package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func TestRecordInfoReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kmeans.trace")

	var out, errb strings.Builder
	if err := run([]string{"record", "-workload", "kmeans", "-txper", "2", "-o", path}, &out, &errb); err != nil {
		t.Fatalf("record: %v (stderr: %s)", err, errb.String())
	}
	if !strings.HasPrefix(out.String(), "recorded kmeans: 16 nodes,") {
		t.Fatalf("record output unstable:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"info", "-i", path}, &out, &errb); err != nil {
		t.Fatalf("info: %v", err)
	}
	if !strings.HasPrefix(out.String(), "workload kmeans  high-contention=false  nodes=16\n") {
		t.Fatalf("info output unstable:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"run", "-i", path, "-scheme", "puno"}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.HasPrefix(out.String(), "kmeans/PUNO: cycles=") {
		t.Fatalf("replay output unstable:\n%s", out.String())
	}
}

func TestUsageAndMissingFlags(t *testing.T) {
	var out, errb strings.Builder
	if err := run(nil, &out, &errb); err == nil || !strings.HasPrefix(err.Error(), "usage:") {
		t.Fatalf("no-arg invocation: %v", err)
	}
	if err := run([]string{"nosuch"}, &out, &errb); err == nil || !strings.HasPrefix(err.Error(), "usage:") {
		t.Fatalf("unknown subcommand: %v", err)
	}
	if err := run([]string{"info"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "-i required") {
		t.Fatalf("info without -i: %v", err)
	}
	if err := run([]string{"run"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "-i required") {
		t.Fatalf("run without -i: %v", err)
	}
	if err := run([]string{"run", "-i", "/nonexistent/x.trace"}, &out, &errb); err == nil {
		t.Fatal("missing trace file accepted")
	}
	if err := run([]string{"run", "-i", "x", "-scheme", "nosuch"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "unknown scheme") {
		t.Fatalf("unknown scheme accepted: %v", err)
	}
	if err := run([]string{"events", "-scheme", "nosuch"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "unknown scheme") {
		t.Fatalf("events with unknown scheme accepted: %v", err)
	}
	if err := run([]string{"events", "-workload", "nosuch"}, &out, &errb); err == nil {
		t.Fatal("events with unknown workload accepted")
	}
	if err := run([]string{"diff"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "need either") {
		t.Fatalf("diff without inputs accepted: %v", err)
	}
	if err := run([]string{"diff", "-workload", "intruder", "-scheme-a", "nosuch"}, &out, &errb); err == nil {
		t.Fatal("diff with unknown scheme accepted")
	}
}

// The full event workflow through the real CLI: capture two runs of the
// same configuration, diff them (identical), then diff against a third
// scheme and check the divergence diagnosis against the golden file.
func TestEventsDiffRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.evt")
	b := filepath.Join(dir, "b.evt")
	c := filepath.Join(dir, "c.evt")

	var out, errb strings.Builder
	capture := func(path, scheme string) {
		t.Helper()
		out.Reset()
		if err := run([]string{"events", "-workload", "intruder", "-txper", "2",
			"-scheme", scheme, "-o", path}, &out, &errb); err != nil {
			t.Fatalf("events %s: %v (stderr: %s)", scheme, err, errb.String())
		}
		if !strings.HasPrefix(out.String(), "captured intruder/") {
			t.Fatalf("events output unstable:\n%s", out.String())
		}
	}
	capture(a, "baseline")
	capture(b, "baseline")
	capture(c, "puno")

	out.Reset()
	if err := run([]string{"diff", "-a", a, "-b", b}, &out, &errb); err != nil {
		t.Fatalf("diff identical: %v", err)
	}
	if !strings.HasPrefix(out.String(), "identical: ") {
		t.Fatalf("identical runs not reported identical:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"diff", "-a", a, "-b", c}, &out, &errb); err != nil {
		t.Fatalf("diff divergent: %v", err)
	}
	checkGolden(t, "testdata/diff.golden", out.String())

	// The in-process capture form must print the same diagnosis.
	out.Reset()
	if err := run([]string{"diff", "-workload", "intruder", "-txper", "2",
		"-scheme-a", "baseline", "-scheme-b", "puno"}, &out, &errb); err != nil {
		t.Fatalf("diff capture mode: %v", err)
	}
	checkGolden(t, "testdata/diff.golden", out.String())
}

func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run `go test ./cmd/punotrace -update`): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// Corrupt and truncated event traces must fail loudly through the CLI.
func TestDiffRejectsCorruptTraces(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.evt")
	var out, errb strings.Builder
	if err := run([]string{"events", "-workload", "kmeans", "-txper", "1",
		"-scheme", "baseline", "-o", good}, &out, &errb); err != nil {
		t.Fatalf("events: %v", err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	trunc := filepath.Join(dir, "trunc.evt")
	if err := os.WriteFile(trunc, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	corrupt := filepath.Join(dir, "corrupt.evt")
	mut := append([]byte(nil), raw...)
	mut[len(mut)/2] ^= 0xFF
	if err := os.WriteFile(corrupt, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	garbage := filepath.Join(dir, "garbage.evt")
	if err := os.WriteFile(garbage, []byte("not an event trace"), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, bad := range []string{trunc, corrupt, garbage} {
		if err := run([]string{"diff", "-a", good, "-b", bad}, &out, &errb); err == nil {
			t.Errorf("%s accepted as -b", filepath.Base(bad))
		}
		if err := run([]string{"diff", "-a", bad, "-b", good}, &out, &errb); err == nil {
			t.Errorf("%s accepted as -a", filepath.Base(bad))
		}
	}
	if err := run([]string{"diff", "-a", good, "-b", filepath.Join(dir, "missing.evt")}, &out, &errb); err == nil {
		t.Error("missing -b file accepted")
	}
}
