// Dynamics: watch a contended run unfold over time. The machine samples
// commits, aborts and traffic every interval; this example renders the
// abort stream of the baseline and PUNO side by side as sparklines —
// the baseline's repeated false-abort bursts versus PUNO's steadier
// progress.
//
//	go run ./examples/dynamics [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	name := "bayes"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	wl, err := puno.WorkloadByName(name)
	if err != nil {
		log.Fatal(err)
	}

	const interval = 5000
	results := map[puno.Scheme]*puno.Result{}
	for _, s := range []puno.Scheme{puno.SchemeBaseline, puno.SchemePUNO} {
		cfg := puno.DefaultConfig()
		cfg.Scheme = s
		cfg.Seed = 42
		cfg.SampleInterval = interval
		res, err := puno.Run(cfg, wl)
		if err != nil {
			log.Fatal(err)
		}
		results[s] = res
	}

	fmt.Printf("%s: aborts per %d-cycle interval (each char ~ one interval)\n\n", name, interval)
	for _, s := range []puno.Scheme{puno.SchemeBaseline, puno.SchemePUNO} {
		res := results[s]
		var peak uint64 = 1
		for _, smp := range res.Timeline {
			if smp.Aborts > peak {
				peak = smp.Aborts
			}
		}
		fmt.Printf("%-9v |%s| peak=%d/interval, total aborts=%d, finished at cycle %d\n",
			s, spark(res.Timeline, peak), peak, res.Aborts, res.Cycles)
	}
	fmt.Println("\nlive transactions at each sample (concurrency view):")
	for _, s := range []puno.Scheme{puno.SchemeBaseline, puno.SchemePUNO} {
		res := results[s]
		line := make([]byte, 0, len(res.Timeline))
		for _, smp := range res.Timeline {
			line = append(line, levelChar(uint64(smp.LiveTxs), 16))
		}
		fmt.Printf("%-9v |%s|\n", s, line)
	}
}

func spark(samples []puno.Sample, peak uint64) string {
	out := make([]byte, 0, len(samples))
	for _, smp := range samples {
		out = append(out, levelChar(smp.Aborts, peak))
	}
	return string(out)
}

func levelChar(v, peak uint64) byte {
	const ramp = " .:-=+*#%@"
	if peak == 0 {
		return ' '
	}
	idx := int(v * uint64(len(ramp)-1) / peak)
	if idx >= len(ramp) {
		idx = len(ramp) - 1
	}
	return ramp[idx]
}
