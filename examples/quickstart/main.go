// Quickstart: run one STAMP-profile workload under the baseline HTM and
// under PUNO, and print what the paper's mechanism buys — fewer transaction
// aborts, far fewer false aborts, and less on-chip traffic.
//
//	go run ./examples/quickstart [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	name := "intruder"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	wl, err := puno.WorkloadByName(name)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %q on the paper's 16-core CMP (Table II configuration)\n\n", wl.Name())
	var base *puno.Result
	for _, scheme := range []puno.Scheme{puno.SchemeBaseline, puno.SchemePUNO} {
		cfg := puno.DefaultConfig()
		cfg.Scheme = scheme
		cfg.Seed = 42

		res, err := puno.Run(cfg, wl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v cycles=%-9d commits=%-6d aborts=%-6d abort-rate=%5.1f%%  false-aborting-GETX=%4.1f%%  traffic=%d\n",
			scheme, res.Cycles, res.Commits, res.Aborts, 100*res.AbortRate(),
			100*res.FalseAbortFraction(), res.Net.TotalTraversals())
		if scheme == puno.SchemeBaseline {
			base = res
		} else {
			fmt.Printf("\nPUNO vs baseline: aborts %+.0f%%, traffic %+.0f%%, unnecessary aborts %d -> %d\n",
				100*(float64(res.Aborts)/float64(base.Aborts)-1),
				100*(float64(res.Net.TotalTraversals())/float64(base.Net.TotalTraversals())-1),
				base.UnnecessaryAborts(), res.UnnecessaryAborts())
		}
	}
}
