// Predictor tuning: inspect the PUNO directory predictor's internals across
// the STAMP suite — unicast rate, measured prediction accuracy, and why
// predictions fell back to multicast. This is the view a hardware architect
// would use to size the P-Buffer validity timeout.
//
//	go run ./examples/predictor [validity-multiplier]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"repro"
)

func main() {
	mult := 0 // package default
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad multiplier %q: %v", os.Args[1], err)
		}
		mult = v
	}

	fmt.Printf("%-10s %8s %8s %9s %9s %10s %10s %9s\n",
		"workload", "TxGETX", "unicast", "mispred", "accuracy", "allInvalid", "reqOlder", "lowConf")
	for _, wl := range puno.Workloads() {
		cfg := puno.DefaultConfig()
		cfg.Scheme = puno.SchemePUNO
		cfg.Seed = 3
		cfg.ValidityTimeoutMult = mult

		m, err := puno.NewMachine(cfg, wl)
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}

		var uni, mis, inval, reqOld, lowc uint64
		for _, p := range m.Predictors() {
			if p == nil {
				continue
			}
			uni += p.Unicasts
			mis += p.Mispreds
			inval += p.FallbackInvalid
			reqOld += p.FallbackReqOlder
			lowc += p.FallbackLowConf
		}
		acc := 1.0
		if uni > 0 {
			acc = 1 - float64(mis)/float64(uni)
		}
		fmt.Printf("%-10s %8d %8d %9d %8.0f%% %10d %10d %9d\n",
			wl.Name(), res.TxGETXIssued, uni, mis, 100*acc, inval, reqOld, lowc)
	}
	fmt.Println("\naccuracy = fraction of unicasts that were NACKed as predicted;")
	fmt.Println("fallback columns say why the directory multicast instead of unicasting.")
}
