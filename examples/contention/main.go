// Contention study: build a family of custom workloads with NewProfile,
// sweeping the degree of read sharing, and watch the paper's pathology
// appear — as more transactions read-share the region that writers update,
// the fraction of transactional write requests that incur false aborting
// climbs, and PUNO's predictive unicast removes almost all of the
// unnecessary aborts.
//
//	go run ./examples/contention
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("read-sharing sweep: 16 nodes, writers update a region read by everyone")
	fmt.Printf("%-10s %-22s %-22s %-10s\n", "", "baseline", "PUNO", "")
	fmt.Printf("%-10s %-10s %-11s %-10s %-11s %s\n",
		"readers", "falseGETX%", "unnecessary", "falseGETX%", "unnecessary", "traffic PUNO/base")

	for _, readers := range []int{4, 8, 16, 24, 32} {
		wl := puno.NewProfile(fmt.Sprintf("share-%d", readers), true, 40,
			// Reader-writers: scan `readers` lines of a 64-line shared
			// region, think, then update one line they read.
			puno.Class{
				StaticID: 1, Weight: 3, RegionLines: 64,
				ReadsMin: readers, ReadsMax: readers,
				WritesMin: 1, WritesMax: 1, WritesFromReads: true,
				ComputePerRead: 2, BodyCompute: 400, Think: 120,
			},
			// Pure writers stir the pot.
			puno.Class{
				StaticID: 2, Weight: 1, RegionLines: 64,
				ReadsMin: 1, ReadsMax: 2,
				WritesMin: 1, WritesMax: 2, WritesFromReads: true,
				ComputePerRead: 2, BodyCompute: 150, Think: 80,
			},
		)

		run := func(s puno.Scheme) *puno.Result {
			cfg := puno.DefaultConfig()
			cfg.Scheme = s
			cfg.Seed = 11
			res, err := puno.Run(cfg, wl)
			if err != nil {
				log.Fatal(err)
			}
			return res
		}
		base := run(puno.SchemeBaseline)
		pn := run(puno.SchemePUNO)
		fmt.Printf("%-10d %-10.1f %-11d %-10.1f %-11d %.2f\n",
			readers,
			100*base.FalseAbortFraction(), base.UnnecessaryAborts(),
			100*pn.FalseAbortFraction(), pn.UnnecessaryAborts(),
			float64(pn.Net.TotalTraversals())/float64(base.Net.TotalTraversals()))
	}
}
