// Bank: a custom transactional application built directly on the public
// API, demonstrating (a) how to write a Workload without the stamp
// generators and (b) that the simulated HTM really is serializable — the
// final account balances must equal exactly the number of committed
// deposits, under every contention-management scheme.
//
// Twelve teller threads deposit into a small set of shared accounts
// (read-modify-write transactions); four auditor threads repeatedly read
// every account in one transaction (a consistent snapshot). The tellers'
// increments conflict with the auditors' read sets — the same structure
// that causes false aborting in the paper.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"

	"repro"
)

const (
	accounts     = 24
	auditors     = 2 // nodes 0..auditors-1 audit; the rest are tellers
	depositsEach = 25
	auditsEach   = 10
	accountBase  = 0x1000 // line-aligned; one account per cache line
)

func accountAddr(i int) puno.Addr { return puno.LineAddr(accountBase, i) }

// bankWorkload implements puno.Workload.
type bankWorkload struct{}

func (bankWorkload) Name() string         { return "bank" }
func (bankWorkload) HighContention() bool { return true }

func (bankWorkload) Program(node int, _ *puno.RNG) puno.Program {
	if node < auditors {
		return auditor(auditsEach)
	}
	return teller(depositsEach)
}

// teller deposits into two random accounts per transaction.
func teller(txs int) puno.Program {
	n := 0
	return puno.ProgramFunc(func(rng *puno.RNG) (puno.TxInstance, bool) {
		if n >= txs {
			return puno.TxInstance{}, false
		}
		n++
		a := rng.Intn(accounts)
		b := rng.Intn(accounts)
		return puno.TxInstance{
			StaticID: 1,
			Ops: []puno.Op{
				{Kind: puno.OpIncr, Addr: accountAddr(a)},
				{Kind: puno.OpIncr, Addr: accountAddr(b)},
				{Kind: puno.OpCompute, Cycles: 40},
			},
			ThinkCycles: 400,
		}, true
	})
}

// auditor reads every account in one transaction (a consistent snapshot).
func auditor(txs int) puno.Program {
	n := 0
	return puno.ProgramFunc(func(*puno.RNG) (puno.TxInstance, bool) {
		if n >= txs {
			return puno.TxInstance{}, false
		}
		n++
		ops := make([]puno.Op, 0, accounts+1)
		for i := 0; i < accounts; i++ {
			ops = append(ops, puno.Op{Kind: puno.OpRead, Addr: accountAddr(i)})
		}
		ops = append(ops, puno.Op{Kind: puno.OpCompute, Cycles: 100})
		return puno.TxInstance{StaticID: 2, Ops: ops, ThinkCycles: 400}, true
	})
}

func main() {
	for _, scheme := range puno.Schemes() {
		cfg := puno.DefaultConfig()
		cfg.Scheme = scheme
		cfg.Seed = 7

		m, err := puno.NewMachine(cfg, bankWorkload{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}

		// Verify serializability: every committed deposit must be visible
		// exactly once in the final memory image.
		m.DrainCaches()
		var wantTotal, gotTotal uint64
		ok := true
		for a, want := range m.CommittedIncrements() {
			got := m.Backing().LoadWord(a)
			wantTotal += want
			gotTotal += got
			if got != want {
				ok = false
			}
		}
		status := "balances consistent"
		if !ok {
			status = "BALANCE MISMATCH (serializability bug!)"
		}
		fmt.Printf("%-10v cycles=%-8d commits=%-4d aborts=%-5d deposits=%d balance-sum=%d  %s\n",
			scheme, res.Cycles, res.Commits, res.Aborts, wantTotal, gotTotal, status)
		if !ok {
			log.Fatal("invariant violated")
		}
	}
}
